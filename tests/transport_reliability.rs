//! Property tests of the fabric's datagram recovery: exactly-once delivery
//! must survive arbitrary loss/duplication/reordering schedules — the
//! property the Phish runtime relied on when it layered its protocol over
//! UDP/IP. These drive the *public* fabric API (the same one every engine
//! uses), on a manual clock so fault schedules replay deterministically.

use proptest::prelude::*;

use phish::net::{
    Fabric, FabricConfig, FabricEndpoint, LossyConfig, NodeId, ReliableConfig, RequestId,
    SplitPhase,
};

/// A two-node lossy fabric with a test-speed recovery profile (tiny rto so
/// manual clocks advancing by ~10ns per pump retransmit promptly).
fn lossy_pair(faults: LossyConfig) -> (FabricEndpoint<u64>, FabricEndpoint<u64>) {
    let recovery = ReliableConfig {
        rto: 10,
        max_retries: 100_000,
    };
    let fabric = Fabric::<u64>::new(2, FabricConfig::lossy(faults).with_recovery(recovery));
    let mut it = fabric.into_endpoints().into_iter();
    let a = it.next().unwrap();
    let b = it.next().unwrap();
    (a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn exactly_once_under_arbitrary_faults(
        drop_prob in 0.0f64..0.6,
        dup_prob in 0.0f64..0.4,
        reorder_prob in 0.0f64..0.4,
        seed in any::<u64>(),
        count in 1u64..150,
    ) {
        let faults = LossyConfig { drop_prob, dup_prob, reorder_prob, seed };
        let (mut a, mut b) = lossy_pair(faults);
        for i in 0..count {
            a.send_at(NodeId(1), i, 0);
        }
        let mut got = Vec::new();
        let mut now = 0;
        for _ in 0..200_000 {
            now += 11;
            a.pump_at(now);
            b.pump_at(now);
            while let Some(env) = b.try_recv() {
                got.push(env.body);
            }
            if a.in_flight() == 0 {
                break;
            }
        }
        prop_assert_eq!(a.in_flight(), 0, "sender never quiesced");
        while let Some(env) = b.try_recv() {
            got.push(env.body);
        }
        got.sort_unstable();
        prop_assert_eq!(got, (0..count).collect::<Vec<_>>());
    }

    #[test]
    fn raw_lossy_link_loses_at_configured_rate(
        seed in any::<u64>(),
    ) {
        // Sanity check the fault injector itself: before any recovery pump,
        // a 30% drop roll keeps ~30% of sends out of the destination queue.
        let faults = LossyConfig { drop_prob: 0.3, dup_prob: 0.0, reorder_prob: 0.0, seed };
        let (mut a, b) = lossy_pair(faults);
        for i in 0..2000 {
            a.send_at(NodeId(1), i, 0);
        }
        let mut n = 0;
        while b.try_recv().is_some() {
            n += 1;
        }
        prop_assert!((1200..=1600).contains(&n), "delivered {n}/2000 at 30% loss");
    }
}

#[test]
fn split_phase_with_lossy_fabric() {
    // A split-phase RPC over faulty links: request ids survive the
    // transport faults because the fabric recovers to exactly-once.
    let (mut client, mut server) = lossy_pair(LossyConfig::nasty(7));
    let mut sp: SplitPhase<u64> = SplitPhase::new();
    // Issue 20 requests; encode the request id in the payload's high bits.
    let ids: Vec<_> = (0..20u64)
        .map(|i| {
            let id = sp.register();
            client.send_at(NodeId(1), (id.0 << 8) | i, 0);
            (id, i)
        })
        .collect();
    let mut now = 0;
    let mut outstanding = 20;
    while outstanding > 0 {
        now += 11;
        // Server echoes requests back as replies, doubled.
        server.pump_at(now);
        while let Some(env) = server.try_recv() {
            let (id, arg) = (env.body >> 8, env.body & 0xFF);
            server.send_at(env.src, (id << 8) | (arg * 2), now);
        }
        client.pump_at(now);
        while let Some(env) = client.try_recv() {
            let id = RequestId(env.body >> 8);
            if sp.complete(id, env.body & 0xFF) {
                outstanding -= 1;
            }
        }
        assert!(now < 10_000_000, "split-phase RPC never completed");
    }
    for (id, i) in ids {
        assert_eq!(sp.poll(id), Some(i * 2), "request {i} got wrong reply");
    }
}
